//! Self-instrumentation by delegation: the server monitors itself.
//!
//! PR 2's telemetry layer exported the server's own latency histograms,
//! counters and gauges as the `mbdTelemetry` OCP subtree
//! (`enterprises.20100.4`); the history layer adds `mbdHistory`
//! (`enterprises.20100.7`) — trailing-60 s windowed summaries of every
//! series, plus the SLO alert engine's rule states. That closes a loop
//! the paper only gestures at: the *same* delegation machinery that
//! manages network devices can manage the management server, because
//! its introspection data is ordinary MIB data. Here a delegated agent
//! computes a health function over the server's own *windowed* p99
//! invoke latency and notification backlog — a 60 s average and peak,
//! not a single instantaneous sample — and defers to the server's own
//! alert engine: any firing SLO rule degrades the verdict. All of it
//! uses nothing but `mib_walk`/`mib_get`, and the agent notifies the
//! manager on degradation transitions.
//!
//! Run with: `cargo run --example self_health`

use mbd::core::ocp::SnmpOcp;
use mbd::core::{ElasticConfig, ElasticProcess, MbdServer};
use mbd::rds::{LoopbackTransport, RdsClient};
use std::sync::Arc;

/// The delegated self-health agent. It resolves history rows by *name*
/// (the name column of the `mbdHistory` table), so it survives series
/// appearing in any order.
const SELF_HEALTH: &str = r#"
var alarmed = false;

// Index arc of the row whose name-column value equals `name`.
fn row_index(column_oid, name) {
    var names = mib_walk(column_oid);
    for (oid in names) {
        if (names[oid] == name) {
            var parts = split(oid, ".");
            return parts[len(parts) - 1];
        }
    }
    return "";
}

// The server health function, judged over the trailing 60 s window:
// degraded when the *average* p99 invoke latency (µs, column 4) or the
// *peak* undrained-notification backlog (column 6) crosses its
// threshold — or when the server's own alert engine has any rule
// firing (mbdAlerts column 3).
fn check(p99_limit_us, queue_limit) {
    var hist = "1.3.6.1.4.1.20100.7.1.1";
    var p = row_index(hist + ".1", "ep.invoke.p99");
    var q = row_index(hist + ".1", "ep.notifications_queued");
    if (p == "" || q == "") {
        return ["no-data", 0, 0, 0];
    }
    var p99_avg = mib_get(hist + ".4." + p);
    var p99_peak = mib_get(hist + ".6." + p);
    var depth_peak = mib_get(hist + ".6." + q);
    var firing = 0;
    var states = mib_walk("1.3.6.1.4.1.20100.7.2.1.3");
    for (oid in states) {
        firing = firing + states[oid];
    }
    var degraded = p99_avg > p99_limit_us || depth_peak > queue_limit || firing > 0;
    if (degraded && !alarmed) {
        alarmed = true;
        notify(["server degraded", p99_avg, p99_peak, depth_peak, firing]);
    }
    if (!degraded && alarmed) {
        alarmed = false;
        notify(["server recovered", p99_avg, p99_peak, depth_peak, firing]);
    }
    if (degraded) { return ["degraded", p99_avg, p99_peak, depth_peak, firing]; }
    return ["healthy", p99_avg, p99_peak, depth_peak, firing];
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = ElasticProcess::new(ElasticConfig::default());
    let server = Arc::new(MbdServer::open(process.clone()));

    // Arm the history rings and one SLO rule: p99 invoke latency over
    // 1 µs fires after a single breaching sample (every real invoke
    // crosses it — the point is to watch the engine drive the verdict).
    let telemetry = process.telemetry();
    telemetry.enable_history(mbd::telemetry::HistoryConfig::default());
    telemetry
        .enable_alerts(vec![mbd::telemetry::AlertRule::parse("ep.invoke.p99>1us:for=1,clear=1")?]);

    // A manager drives ordinary RDS traffic so the latency histograms
    // have something to say.
    let s = Arc::clone(&server);
    let client =
        RdsClient::new(LoopbackTransport::new(move |b: &[u8]| s.process_request(b)), "noc");
    client.delegate(
        "work",
        "fn main(n) { var s = 0; for (i in range(n)) { s = s + i; } return s; }",
    )?;
    let worker = client.instantiate("work")?;
    for _ in 0..50 {
        client.invoke(worker, "main", &[mbd::ber::BerValue::Integer(200)])?;
    }

    // Ingest the registry into the history rings (the server binary's
    // background sampler does this once a second) — but do NOT let the
    // alert engine evaluate yet — then publish into the shared MIB.
    telemetry.sample_history();
    let ocp = SnmpOcp::new(process.clone(), "public");
    ocp.refresh();

    // Delegate the health agent to the server it is judging.
    process.delegate("self-health", SELF_HEALTH)?;
    let dpi = process.instantiate("self-health")?;

    // Generous thresholds, no rule firing yet: healthy.
    let verdict = process.invoke(dpi, "check", &[10_000_000.into(), 100.into()])?;
    println!("lenient thresholds        : {verdict}");

    // Now let the server's own alert engine evaluate: the p99 rule
    // fires, and the same lenient thresholds degrade — the delegated
    // agent defers to the server's SLO verdict.
    let edges = telemetry.sample_and_evaluate();
    for edge in &edges {
        println!("alert edge                : {} fired={}", edge.rule, edge.fired);
    }
    ocp.refresh();
    let verdict = process.invoke(dpi, "check", &[10_000_000.into(), 100.into()])?;
    println!("lenient + rule firing     : {verdict}");
    for n in process.drain_notifications() {
        println!("notification from {}: {}", n.dpi, n.value);
    }

    // The same numbers, straight off the registry.
    println!("\n{}", process.telemetry().snapshot_text());
    Ok(())
}
