//! Self-instrumentation by delegation: the server monitors itself.
//!
//! PR 2's telemetry layer exports the server's own latency histograms,
//! counters and gauges as the `mbdTelemetry` OCP subtree
//! (`enterprises.20100.4`). That closes a loop the paper only gestures
//! at: the *same* delegation machinery that manages network devices can
//! manage the management server, because its introspection data is
//! ordinary MIB data. Here a delegated agent computes a health function
//! over the server's own p99 invoke latency and notification-queue
//! depth — using nothing but `mib_walk`/`mib_get` — and notifies the
//! manager on degradation transitions.
//!
//! Run with: `cargo run --example self_health`

use mbd::core::ocp::SnmpOcp;
use mbd::core::{ElasticConfig, ElasticProcess, MbdServer};
use mbd::rds::{LoopbackTransport, RdsClient};
use std::sync::Arc;

/// The delegated self-health agent. It resolves histogram and gauge
/// rows by *name* (the name columns of the telemetry tables), so it
/// survives metrics appearing in any order.
const SELF_HEALTH: &str = r#"
var alarmed = false;

// Index arc of the row whose name-column value equals `name`.
fn row_index(column_oid, name) {
    var names = mib_walk(column_oid);
    for (oid in names) {
        if (names[oid] == name) {
            var parts = split(oid, ".");
            return parts[len(parts) - 1];
        }
    }
    return "";
}

// The server health function: degraded when p99 invoke latency (µs)
// or the undrained-notification backlog crosses its threshold.
fn check(p99_limit_us, queue_limit) {
    var hist = "1.3.6.1.4.1.20100.4.3.1";
    var gauges = "1.3.6.1.4.1.20100.4.2.1";
    var h = row_index(hist + ".1", "ep.invoke");
    var g = row_index(gauges + ".1", "ep.notifications_queued");
    if (h == "" || g == "") {
        return ["no-data", 0, 0];
    }
    var p99 = mib_get(hist + ".6." + h);
    var depth = mib_get(gauges + ".2." + g);
    var degraded = p99 > p99_limit_us || depth > queue_limit;
    if (degraded && !alarmed) {
        alarmed = true;
        notify(["server degraded", p99, depth]);
    }
    if (!degraded && alarmed) {
        alarmed = false;
        notify(["server recovered", p99, depth]);
    }
    if (degraded) { return ["degraded", p99, depth]; }
    return ["healthy", p99, depth];
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = ElasticProcess::new(ElasticConfig::default());
    let server = Arc::new(MbdServer::open(process.clone()));

    // A manager drives ordinary RDS traffic so the latency histograms
    // have something to say.
    let s = Arc::clone(&server);
    let client =
        RdsClient::new(LoopbackTransport::new(move |b: &[u8]| s.process_request(b)), "noc");
    client.delegate(
        "work",
        "fn main(n) { var s = 0; for (i in range(n)) { s = s + i; } return s; }",
    )?;
    let worker = client.instantiate("work")?;
    for _ in 0..50 {
        client.invoke(worker, "main", &[mbd::ber::BerValue::Integer(200)])?;
    }

    // The OCP publishes the telemetry registry into the shared MIB.
    let ocp = SnmpOcp::new(process.clone(), "public");
    ocp.refresh();

    // Delegate the health agent to the server it is judging.
    process.delegate("self-health", SELF_HEALTH)?;
    let dpi = process.instantiate("self-health")?;

    // Generous thresholds: healthy.
    let verdict = process.invoke(dpi, "check", &[10_000_000.into(), 100.into()])?;
    println!("lenient thresholds : {verdict}");

    // Impossible thresholds: the agent raises a degradation event.
    ocp.refresh();
    let verdict = process.invoke(dpi, "check", &[0.into(), 0.into()])?;
    println!("strict thresholds  : {verdict}");
    for n in process.drain_notifications() {
        println!("notification from {}: {}", n.dpi, n.value);
    }

    // The same numbers, straight off the registry.
    println!("\n{}", process.telemetry().snapshot_text());
    Ok(())
}
