//! Connection-flood smoke: the event-driven front-end under thousands
//! of idle connections.
//!
//! Opens `CONNS` idle TCP connections (they never send a byte — the
//! expensive kind under thread-per-connection, the free kind under a
//! reactor) and then drives **every RDS verb** through a fresh
//! connection while the flood stays open. Against an in-process server
//! it also asserts the gauges directly: every connection registered,
//! health still `accepting`, zero requests shed, shutdown bounded.
//!
//! Run with: `cargo run --release --example conn_flood [CONNS] [ADDR]`
//!
//! Without `ADDR` the example spawns its own 4-worker server (the E11
//! configuration). With `ADDR` it floods a running `mbd-server`
//! instead — `scripts/ci.sh` uses that mode and checks the server's
//! own `--stats` gauges stay in the accepting band.

use mbd::core::{ElasticConfig, ElasticProcess, MbdServer};
use mbd::rds::{RdsClient, ServerHealth, TcpServer, TcpServerConfig, TcpTransport};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_CONNS: usize = 3000;

fn drive_all_verbs(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let client = RdsClient::new(TcpTransport::connect(addr)?, "flood-mgr");
    client.delegate("flood", "var n = 0; fn bump() { n = n + 1; return n; }")?;
    let dpi = client.instantiate("flood")?;
    assert_eq!(client.invoke(dpi, "bump", &[])?, mbd::ber::BerValue::Integer(1));
    client.suspend(dpi)?;
    client.resume(dpi)?;
    client.send_message(dpi, b"hello")?;
    assert!(client.list_programs()?.iter().any(|p| p == "flood"));
    assert!(client.list_instances()?.iter().any(|i| i.id == dpi));
    assert!(!client.read_journal(0)?.is_empty());
    client.terminate(dpi)?;
    client.delete("flood")?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conns = match std::env::args().nth(1) {
        Some(arg) => arg.parse::<usize>()?,
        None => DEFAULT_CONNS,
    };
    let external = std::env::args().nth(2);

    // Two fds per loopback connection when the server is in-process,
    // one when it is not; budget for the worst case plus slack.
    mbd::rds::reactor::raise_nofile_limit(conns as u64 * 2 + 1024);

    // In-process mode spawns the E11 configuration: a fixed 4-worker
    // execution tier behind the reactor.
    let local = match &external {
        Some(_) => None,
        None => {
            let process = ElasticProcess::new(ElasticConfig::default());
            let server = Arc::new(MbdServer::open(process.clone()));
            let config = TcpServerConfig {
                workers: 4,
                max_connections: conns + 64,
                telemetry: Some(process.telemetry().clone()),
                ..Default::default()
            };
            Some(TcpServer::spawn_with("127.0.0.1:0", config, move |bytes| {
                server.process_request(bytes)
            })?)
        }
    };
    let addr = match (&external, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(tcp)) => tcp.local_addr().to_string(),
        _ => unreachable!(),
    };

    let started = Instant::now();
    let mut flood = Vec::with_capacity(conns);
    for i in 0..conns {
        match TcpStream::connect(&addr) {
            Ok(s) => flood.push(s),
            Err(e) => return Err(format!("connection {i} refused: {e}").into()),
        }
    }
    println!("{} idle connections opened in {:?}", flood.len(), started.elapsed());

    if let Some(tcp) = &local {
        // Wait for the reactor to register the whole flood.
        let deadline = Instant::now() + Duration::from_secs(10);
        while tcp.open_connections() < flood.len() as u64 {
            if Instant::now() > deadline {
                println!(
                    "flood FAILED: only {} of {} connections registered",
                    tcp.open_connections(),
                    flood.len()
                );
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Every verb still round-trips promptly with the flood in place.
    let verbs = Instant::now();
    drive_all_verbs(&addr)?;
    println!("all verbs round-tripped under the flood in {:?}", verbs.elapsed());

    if let Some(tcp) = local {
        let health = tcp.health();
        let sheds = tcp.sheds();
        let rejected = tcp.connections_rejected();
        println!(
            "gauges: {} open, health {health}, {sheds} shed, {rejected} rejected",
            tcp.open_connections()
        );
        let ok = health == ServerHealth::Accepting && sheds == 0 && rejected == 0;
        if !ok {
            println!("flood FAILED: idle connections must not degrade the server");
            std::process::exit(1);
        }
        let drain = Instant::now();
        tcp.shutdown();
        println!("drained {} connections in {:?}", flood.len(), drain.elapsed());
        if drain.elapsed() > Duration::from_secs(5) {
            println!("flood FAILED: shutdown not bounded");
            std::process::exit(1);
        }
    }
    println!("conn flood ok: {} idle connections, every verb served", flood.len());
    Ok(())
}
