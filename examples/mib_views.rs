//! MIB views with the VDL and the MCVA.
//!
//! Defines views over a device's interface and TCP tables, evaluates
//! them live and as snapshots, materializes one back into the MIB for
//! legacy SNMP managers, and prints the VDL-vs-SMI specification sizes
//! (the thesis's Figure 5.10 vs 5.19 comparison).
//!
//! Run with: `cargo run --example mib_views`

use mbd::snmp::{agent::SnmpAgent, manager::SnmpManager, mib2, MibStore};
use mbd::vdl::{parse_view, smi, Mcva};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A device MIB with live-looking data.
    let mib = MibStore::new();
    mib2::install_interfaces(&mib, 4, 10_000_000)?;
    mib.counter_add(&mib2::if_in_octets(1), 4_200_000)?;
    mib.counter_add(&mib2::if_in_octets(2), 150_000)?;
    mib.counter_add(&mib2::if_in_octets(3), 9_900_000)?;
    mib.counter_add(&mib2::if_in_errors(3), 420)?;
    for (remote, port) in
        [([10, 1, 1, 5], 40_001u16), ([10, 1, 1, 5], 40_002), ([172, 16, 0, 9], 52_222)]
    {
        mib2::install_tcp_conn(
            &mib,
            mib2::TcpConn {
                state: mib2::tcp_state::ESTABLISHED,
                local: ([10, 0, 0, 1], 443),
                remote: (remote, port),
            },
        )?;
    }

    let mcva = Mcva::new(mib.clone());

    // A projection + selection + computation over the interfaces table.
    mcva.define(
        "busy",
        "view busy\n\
         from i = 1.3.6.1.2.1.2.2.1\n\
         where i.10 > 1000000\n\
         select i.2 as name, i.10 as octets, i.10 * 8 / i.5 as load_pct, i.14 as errors",
    )?;

    // An aggregation over tcpConnTable: connections per remote host.
    mcva.define(
        "remotes",
        "view remotes\n\
         from c = 1.3.6.1.2.1.6.13.1\n\
         where c.1 == 5\n\
         select c.4 as remote, count() as conns\n\
         group by c.4",
    )?;

    println!("== live evaluation: busy interfaces ==");
    print!("{}", mcva.evaluate("busy")?.to_table_string());

    println!("\n== live evaluation: connections per remote ==");
    print!("{}", mcva.evaluate("remotes")?.to_table_string());

    // Snapshot evaluation: frozen against later changes.
    let snapshot = mcva.evaluate_snapshot("remotes")?;
    mib2::remove_tcp_conn(
        &mib,
        mib2::TcpConn {
            state: mib2::tcp_state::ESTABLISHED,
            local: ([10, 0, 0, 1], 443),
            remote: ([172, 16, 0, 9], 52_222),
        },
    );
    println!("\nafter the 172.16.0.9 connection closed:");
    println!("  live rows    = {}", mcva.evaluate("remotes")?.rows.len());
    println!("  snapshot rows = {} (still sees it)", snapshot.rows.len());

    // Materialize: the computed view becomes plain MIB objects.
    let root = mcva.materialize("busy")?;
    println!("\nmaterialized `busy` under {root}; reading it back via SNMP:");
    let agent = SnmpAgent::new("public", mib.clone());
    let mut mgr = SnmpManager::new("public");
    for vb in mgr.walk(&root, |req| agent.handle(req))? {
        println!("  {} = {}", vb.oid, vb.value);
    }

    // Spec economy: the same view as VDL vs generated SMI extension.
    let def = parse_view(
        "view busy\n\
         from i = 1.3.6.1.2.1.2.2.1\n\
         where i.10 > 1000000\n\
         select i.2 as name, i.10 * 8 / i.5 as load",
    )?;
    let vdl_text = smi::to_vdl_text(&def);
    let smi_text = smi::to_smi_spec(&def);
    println!(
        "\nspec sizes: VDL {} lines vs SMI extension {} lines ({}x)",
        smi::measure(&vdl_text).lines,
        smi::measure(&smi_text).lines,
        smi::measure(&smi_text).lines / smi::measure(&vdl_text).lines
    );
    println!("\n-- the VDL definition --\n{vdl_text}");
    println!("-- the first lines of the SMI equivalent --");
    for line in smi_text.lines().take(12) {
        println!("{line}");
    }
    println!("...");
    Ok(())
}
